package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/measure"
	"repro/internal/simclock"
)

// The metrics registry layers typed instruments — monotonic counters,
// point-in-time gauges, and fixed-bound histograms — on top of the plain
// name→float64 counters `measure.Set` offers. The registry owns its own
// state so traced runs never touch the kernel's checksummed probe set;
// Publish copies a snapshot into a measure.Set when a report wants the
// two side by side. Everything renders and publishes in sorted-name
// order, so dumps diff cleanly across runs.

// Counter is a monotonically increasing event count.
type Counter struct {
	mu sync.Mutex
	v  uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add accumulates n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a point-in-time level (queue depth, cache bytes, live VMs).
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores the current level.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add shifts the level by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram is a latency distribution over fixed, immutable bucket
// bounds (in cycles). Bounds are upper-inclusive; one implicit overflow
// bucket catches everything above the last bound. Fixed bounds keep the
// rendered output shape — and therefore diffs — stable across runs.
type Histogram struct {
	mu      sync.Mutex
	bounds  []simclock.Cycles // sorted ascending
	buckets []uint64          // len(bounds)+1, last = overflow
	count   uint64
	total   simclock.Cycles
	max     simclock.Cycles
}

// Observe records one duration sample.
func (h *Histogram) Observe(d simclock.Cycles) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.buckets[i]++
	h.count++
	h.total += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// MeanMicros returns the average sample in microseconds (0 when empty).
func (h *Histogram) MeanMicros() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.total) / float64(h.count) / float64(simclock.CyclesPerMicrosecond)
}

// Quantile returns an upper bound for the q-th quantile (0..1): the
// bound of the bucket holding the nearest-rank sample, or the observed
// max for the overflow bucket. Coarse by design — the exact distribution
// lives in the trace events; this is the cheap always-on summary.
func (h *Histogram) Quantile(q float64) simclock.Cycles {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// snapshot returns copies of the internals for rendering.
func (h *Histogram) snapshot() (bounds []simclock.Cycles, buckets []uint64, count uint64, total, max simclock.Cycles) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds = append([]simclock.Cycles(nil), h.bounds...)
	buckets = append([]uint64(nil), h.buckets...)
	return bounds, buckets, h.count, h.total, h.max
}

// DefaultLatencyBounds are the standard histogram bounds for kernel-path
// latencies: 1 µs to 10 ms in a 1-2-5 ladder, expressed in cycles.
func DefaultLatencyBounds() []simclock.Cycles {
	us := []uint64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000}
	out := make([]simclock.Cycles, len(us))
	for i, u := range us {
		out[i] = simclock.FromMicros(float64(u))
	}
	return out
}

// Registry is a named collection of typed instruments with deterministic
// (sorted-name) iteration everywhere.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe: a
// nil registry returns a nil instrument whose methods no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. bounds is
// used only on first creation (nil selects DefaultLatencyBounds); it
// must be sorted ascending.
func (r *Registry) Histogram(name string, bounds []simclock.Cycles) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultLatencyBounds()
		}
		b := append([]simclock.Cycles(nil), bounds...)
		h = &Histogram{bounds: b, buckets: make([]uint64, len(b)+1)}
		r.histograms[name] = h
	}
	return h
}

func (r *Registry) sortedCounterNames() []string {
	out := make([]string, 0, len(r.counters))
	for n := range r.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (r *Registry) sortedGaugeNames() []string {
	out := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func (r *Registry) sortedHistogramNames() []string {
	out := make([]string, 0, len(r.histograms))
	for n := range r.histograms {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Publish copies every instrument into set as flat counters —
// `trace.counter.<name>`, `trace.gauge.<name>`, and for histograms
// `trace.hist.<name>.count` / `.mean_us` / `.p95_us` — so scenario and
// sweep reports can show metrics beside the Table III probes. Sorted
// order; never touches set's probes.
func (r *Registry) Publish(set *measure.Set) {
	if r == nil || set == nil {
		return
	}
	r.mu.Lock()
	counters := r.sortedCounterNames()
	gauges := r.sortedGaugeNames()
	hists := r.sortedHistogramNames()
	cm, gm, hm := r.counters, r.gauges, r.histograms
	r.mu.Unlock()
	for _, n := range counters {
		set.SetCounter("trace.counter."+n, float64(cm[n].Value()))
	}
	for _, n := range gauges {
		set.SetCounter("trace.gauge."+n, gm[n].Value())
	}
	for _, n := range hists {
		h := hm[n]
		set.SetCounter("trace.hist."+n+".count", float64(h.Count()))
		set.SetCounter("trace.hist."+n+".mean_us", h.MeanMicros())
		set.SetCounter("trace.hist."+n+".p95_us", h.Quantile(0.95).Micros())
	}
}

// String renders all instruments in sorted order: counters, gauges, then
// histograms with their non-empty buckets.
func (r *Registry) String() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	counters := r.sortedCounterNames()
	gauges := r.sortedGaugeNames()
	hists := r.sortedHistogramNames()
	cm, gm, hm := r.counters, r.gauges, r.histograms
	r.mu.Unlock()
	var b strings.Builder
	for _, n := range counters {
		fmt.Fprintf(&b, "counter %-28s %d\n", n, cm[n].Value())
	}
	for _, n := range gauges {
		fmt.Fprintf(&b, "gauge   %-28s %g\n", n, gm[n].Value())
	}
	for _, n := range hists {
		bounds, buckets, count, total, max := hm[n].snapshot()
		mean := 0.0
		if count > 0 {
			mean = float64(total) / float64(count) / float64(simclock.CyclesPerMicrosecond)
		}
		fmt.Fprintf(&b, "hist    %-28s n=%d mean=%.3fus max=%.3fus\n", n, count, mean, max.Micros())
		for i, cnt := range buckets {
			if cnt == 0 {
				continue
			}
			if i < len(bounds) {
				fmt.Fprintf(&b, "        <=%9.1fus %d\n", bounds[i].Micros(), cnt)
			} else {
				fmt.Fprintf(&b, "         >%9.1fus %d\n", bounds[len(bounds)-1].Micros(), cnt)
			}
		}
	}
	return b.String()
}
