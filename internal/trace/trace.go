// Package trace is the simulated-time structured-event tracing layer.
// The evaluation harness (internal/measure) mirrors the paper's Table III
// and reports only phase averages; this package records *which* hypercall,
// vGIC injection or PCAP download produced an outlier, as a stream of
// timestamped events in per-core bounded ring buffers.
//
// Determinism is the design constraint everything here answers to: the
// scenario engine asserts byte-identical state checksums across runs and
// across the sequential/parallel engines, and tracing must not perturb
// them. Consequently:
//
//   - events are stamped with the *simulated* clock only — no host time
//     anywhere;
//   - each simulated core owns one ring, written exclusively by the
//     goroutine that owns that core (or by the single-threaded epoch
//     commit phase), so parallel runs need no locks and host interleaving
//     cannot reorder a ring;
//   - rings are fixed-capacity and drop-oldest, with a drop counter, so a
//     long run costs bounded memory and recording never allocates after
//     ring creation;
//   - recording never advances a clock, touches a cache model, or mutates
//     any state a scenario checksum covers — a traced run and an untraced
//     run of the same spec produce the byte-identical checksum.
//
// Events carry an optional flow ID that threads a causal chain across
// cores and subsystems — one hardware-task request is a single chain from
// the guest hypercall through the manager queue, the reconfiguration
// pipeline and the PCAP download to the completion IRQ. The Chrome
// exporter (chrome.go) turns flows into trace_event flow arrows.
package trace

import "repro/internal/simclock"

// Kind enumerates the traced event types.
type Kind uint8

// Event kinds. The names (see String) are the Chrome-trace slice names
// and part of the documented schema; extend at the end to keep exports
// comparable across versions.
const (
	// KindHypercall is one hypercall/portal invocation: a span from SWI
	// entry to handler return. A = selector, B = status returned.
	KindHypercall Kind = iota
	// KindVMSwitch is one full world switch: A = outgoing PD id (+1,
	// 0 = none), B = incoming PD id (+1).
	KindVMSwitch
	// KindSchedWake marks a PD becoming runnable: A = PD id, B = priority.
	KindSchedWake
	// KindSchedBlock marks a PD leaving the runqueue: A = PD id.
	KindSchedBlock
	// KindSchedRotate marks a quantum-expiry ring rotation: A = priority.
	KindSchedRotate
	// KindVGICInject is a virtual interrupt queued for delivery:
	// A = IRQ id, B = PD id.
	KindVGICInject
	// KindVGICEOI is a guest completing a vIRQ: A = IRQ id, B = PD id.
	KindVGICEOI
	// KindVGICRelatch is a re-raise latched while the line was in
	// service (the storm window): A = IRQ id, B = PD id.
	KindVGICRelatch
	// KindHwReq is the client-side view of one hardware-task request: a
	// span from the HcHwTaskRequest hypercall to the manager's reply
	// waking the caller. Flow = request id, A = task id, B = reply.
	KindHwReq
	// KindHwReqSubmit marks the request entering the manager queue
	// (on the manager's core for cross-core submissions).
	// Flow = request id, A = task id, B = client PD id.
	KindHwReqSubmit
	// KindHwReqFetch marks the manager popping the request.
	// Flow = request id.
	KindHwReqFetch
	// KindHwReqComplete marks the manager posting the reply.
	// Flow = request id, A = status.
	KindHwReqComplete
	// KindReconfigSubmit is a demand reconfiguration entering the
	// pipeline: Flow = request id, A = image key, B = outcome
	// (ReconfigWarm/ReconfigColdMiss/ReconfigCoalesced).
	KindReconfigSubmit
	// KindFillStart is an SD→cache staging read starting:
	// A = image key, B = length. Flow = first waiter (0 speculative).
	KindFillStart
	// KindFillDone is the staging read landing: A = image key.
	KindFillDone
	// KindReconfigQueued marks a ready request parking in the PCAP queue
	// behind an active transfer: Flow = request id, A = image key.
	KindReconfigQueued
	// KindPCAPStart is the PCAP download kicking: Flow = request id,
	// A = target PRR, B = length.
	KindPCAPStart
	// KindPCAPDone is the PCAP transfer completing: Flow = request id,
	// A = target PRR, B = 1 on success.
	KindPCAPDone
	// KindCompletionIRQ is the PCAP completion interrupt injected into
	// the owning client's vGIC: Flow = request id, A = IRQ id, B = PD id.
	KindCompletionIRQ
	// KindIPCCall is one portal IPC round trip (call to reply) as seen
	// by the caller: A = caller PD id, B = callee PD id.
	KindIPCCall
	// KindEpochCommit is one epoch-barrier commit phase of the parallel
	// engine: A = epoch ordinal, B = closures replayed at this barrier.
	KindEpochCommit
	// KindFaultInject is one injected fault firing: Flow = request id
	// (0 for speculative fills), A = fault class (see FaultSD* below),
	// B = image key or PRR index depending on the class.
	KindFaultInject
	// KindReconfigRetry is the pipeline rescheduling a failed leg:
	// Flow = request id, A = image key, B = attempt number.
	KindReconfigRetry
	// KindPRRQuarantine is a PRR crossing its fault threshold and leaving
	// the placement pool: A = PRR index, B = fault count.
	KindPRRQuarantine
	// KindQoSThrottle is the admission guard refusing a request:
	// A = client PD id, B = status returned (throttled/retry).
	KindQoSThrottle
	// KindBreakerTrip is a client's circuit breaker opening:
	// A = client PD id, B = charge weight that tripped it.
	KindBreakerTrip

	numKinds
)

// Fault classes (Event.A of KindFaultInject).
const (
	FaultSDError   = 0 // SD staging read failed
	FaultSDStall   = 1 // SD staging read stalled
	FaultCorrupt   = 2 // staged image poisoned
	FaultPCAPCRC   = 3 // PCAP download CRC failure
	FaultPCAPStall = 4 // PCAP transfer hang (watchdog reap)
	FaultPRR       = 5 // transient PRR config fault
)

// Reconfiguration-submit outcomes (Event.B of KindReconfigSubmit).
const (
	ReconfigColdMiss  = 0
	ReconfigWarm      = 1
	ReconfigCoalesced = 2
)

var kindNames = [numKinds]string{
	KindHypercall:      "hypercall",
	KindVMSwitch:       "vm_switch",
	KindSchedWake:      "sched_wake",
	KindSchedBlock:     "sched_block",
	KindSchedRotate:    "sched_rotate",
	KindVGICInject:     "vgic_inject",
	KindVGICEOI:        "vgic_eoi",
	KindVGICRelatch:    "vgic_relatch",
	KindHwReq:          "hwreq",
	KindHwReqSubmit:    "hwreq_submit",
	KindHwReqFetch:     "hwreq_fetch",
	KindHwReqComplete:  "hwreq_complete",
	KindReconfigSubmit: "reconfig_submit",
	KindFillStart:      "fill_start",
	KindFillDone:       "fill_done",
	KindReconfigQueued: "reconfig_queued",
	KindPCAPStart:      "pcap_start",
	KindPCAPDone:       "pcap_done",
	KindCompletionIRQ:  "completion_irq",
	KindIPCCall:        "ipc_call",
	KindEpochCommit:    "epoch_commit",
	KindFaultInject:    "fault_inject",
	KindReconfigRetry:  "reconfig_retry",
	KindPRRQuarantine:  "prr_quarantine",
	KindQoSThrottle:    "qos_throttle",
	KindBreakerTrip:    "breaker_trip",
}

// categories group kinds for the Chrome exporter's cat field.
var kindCats = [numKinds]string{
	KindHypercall:      "kernel",
	KindVMSwitch:       "sched",
	KindSchedWake:      "sched",
	KindSchedBlock:     "sched",
	KindSchedRotate:    "sched",
	KindVGICInject:     "vgic",
	KindVGICEOI:        "vgic",
	KindVGICRelatch:    "vgic",
	KindHwReq:          "hwreq",
	KindHwReqSubmit:    "hwreq",
	KindHwReqFetch:     "hwreq",
	KindHwReqComplete:  "hwreq",
	KindReconfigSubmit: "reconfig",
	KindFillStart:      "reconfig",
	KindFillDone:       "reconfig",
	KindReconfigQueued: "reconfig",
	KindPCAPStart:      "reconfig",
	KindPCAPDone:       "reconfig",
	KindCompletionIRQ:  "reconfig",
	KindIPCCall:        "ipc",
	KindEpochCommit:    "engine",
	KindFaultInject:    "fault",
	KindReconfigRetry:  "fault",
	KindPRRQuarantine:  "fault",
	KindQoSThrottle:    "qos",
	KindBreakerTrip:    "qos",
}

// String returns the schema name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Cat returns the kind's category (the Chrome-trace cat field).
func (k Kind) Cat() string {
	if int(k) < len(kindCats) {
		return kindCats[k]
	}
	return "other"
}

// Event is one traced occurrence. When/Dur are simulated cycles; Dur is
// zero for point events. Flow threads causally related events into one
// chain (0 = no flow). A and B are kind-specific payload words.
type Event struct {
	When simclock.Cycles
	Dur  simclock.Cycles
	Flow uint64
	A, B uint64
	Kind Kind
}

// DefaultCapacity is the per-core ring capacity EnableTrace-style
// constructors use when the caller does not choose one. Sized so the
// flight recorder retains the full causal chain of recent hardware-task
// requests even on a core flooded with hypercall and scheduler events.
const DefaultCapacity = 16384

// Ring is one core's bounded event buffer: fixed capacity, drop-oldest.
// All methods are nil-receiver-safe so instrumentation sites can record
// unconditionally; a nil ring swallows the event. A ring must only be
// written by the goroutine that owns its core (or by the single-threaded
// epoch commit phase) — exactly the discipline the rest of the simulated
// state already obeys.
type Ring struct {
	buf   []Event
	start int // index of the oldest event
	n     int // live events
	drops uint64
	seq   uint64 // events ever emitted
}

// NewRing builds a ring holding up to capacity events (<=0 selects
// DefaultCapacity).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit records a point event.
func (r *Ring) Emit(when simclock.Cycles, k Kind, flow, a, b uint64) {
	r.EmitSpan(when, 0, k, flow, a, b)
}

// EmitSpan records an event with a duration (a span from when to
// when+dur).
func (r *Ring) EmitSpan(when, dur simclock.Cycles, k Kind, flow, a, b uint64) {
	if r == nil {
		return
	}
	r.seq++
	i := r.start + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = Event{When: when, Dur: dur, Kind: k, Flow: flow, A: a, B: b}
	if r.n < len(r.buf) {
		r.n++
	} else {
		// Overwrote the oldest event.
		r.start++
		if r.start == len(r.buf) {
			r.start = 0
		}
		r.drops++
	}
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Drops returns how many events were overwritten by newer ones.
func (r *Ring) Drops() uint64 {
	if r == nil {
		return 0
	}
	return r.drops
}

// Total returns how many events were ever emitted (retained + dropped).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.seq
}

// Events returns the retained events oldest-first (a copy).
func (r *Ring) Events() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]Event, r.n)
	tail := copy(out, r.buf[r.start:min(r.start+r.n, len(r.buf))])
	copy(out[tail:], r.buf[:r.n-tail])
	return out
}

// Last returns up to n of the most recent events, oldest-first.
func (r *Ring) Last(n int) []Event {
	ev := r.Events()
	if len(ev) > n {
		ev = ev[len(ev)-n:]
	}
	return ev
}

// Tracer is the whole machine's trace state: one ring per simulated core
// plus the metrics registry and the name resolvers the exporters use.
// A nil Tracer is a valid "tracing off" value; Core returns a nil ring.
type Tracer struct {
	rings []*Ring

	// Metrics is the registry traced latency distributions feed
	// (hypercall/IPC/switch histograms); exported alongside the events.
	Metrics *Registry

	// SelectorName resolves a hypercall selector to its portal name and
	// PDName a protection-domain id to its label, for the exporters.
	// Either may be nil (numeric fallback).
	SelectorName func(sel int) string
	PDName       func(id int) string
}

// New builds a tracer for cores simulated cores with the given per-core
// ring capacity (<=0 selects DefaultCapacity).
func New(cores, capacity int) *Tracer {
	t := &Tracer{Metrics: NewRegistry()}
	for i := 0; i < cores; i++ {
		t.rings = append(t.rings, NewRing(capacity))
	}
	return t
}

// Core returns core i's ring (nil on a nil tracer, so call sites can
// record unconditionally).
func (t *Tracer) Core(i int) *Ring {
	if t == nil || i < 0 || i >= len(t.rings) {
		return nil
	}
	return t.rings[i]
}

// Cores returns the number of per-core rings.
func (t *Tracer) Cores() int {
	if t == nil {
		return 0
	}
	return len(t.rings)
}

// Events returns the total retained events across all rings.
func (t *Tracer) Events() uint64 {
	var n uint64
	if t == nil {
		return 0
	}
	for _, r := range t.rings {
		n += uint64(r.Len())
	}
	return n
}

// Total returns the events ever emitted across all rings.
func (t *Tracer) Total() uint64 {
	var n uint64
	if t == nil {
		return 0
	}
	for _, r := range t.rings {
		n += r.Total()
	}
	return n
}

// Drops returns the total drop count across all rings.
func (t *Tracer) Drops() uint64 {
	var n uint64
	if t == nil {
		return 0
	}
	for _, r := range t.rings {
		n += r.Drops()
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
