package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/measure"
	"repro/internal/simclock"
)

func TestRingDropOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(simclock.Cycles(i), KindSchedWake, 0, uint64(i), 0)
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Drops() != 6 {
		t.Fatalf("Drops = %d, want 6", r.Drops())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	evs := r.Events()
	for i, e := range evs {
		if want := uint64(6 + i); e.A != want {
			t.Fatalf("event %d: A = %d, want %d (oldest-first after drops)", i, e.A, want)
		}
	}
	last := r.Last(2)
	if len(last) != 2 || last[0].A != 8 || last[1].A != 9 {
		t.Fatalf("Last(2) = %+v, want A=8,9", last)
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Emit(0, KindHypercall, 0, 0, 0) // must not panic
	r.EmitSpan(0, 1, KindHypercall, 0, 0, 0)
	if r.Len() != 0 || r.Drops() != 0 || r.Total() != 0 || r.Events() != nil {
		t.Fatal("nil ring must report empty")
	}
	var tr *Tracer
	if tr.Core(0) != nil || tr.Cores() != 0 || tr.Events() != 0 || tr.Drops() != 0 {
		t.Fatal("nil tracer must report empty")
	}
	if _, err := tr.ChromeJSON(); err != nil {
		t.Fatalf("nil tracer ChromeJSON: %v", err)
	}
	if !strings.Contains(tr.FlightDump(8), "disabled") {
		t.Fatal("nil tracer FlightDump should say disabled")
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if k.Cat() == "" || k.Cat() == "other" {
			t.Fatalf("kind %d (%s) has no category", k, k)
		}
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := r.Counter("reqs").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(-1)
	if got := r.Gauge("depth").Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
	h := r.Histogram("lat", []simclock.Cycles{100, 1000})
	h.Observe(50)
	h.Observe(500)
	h.Observe(5000) // overflow bucket
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	if q := h.Quantile(0); q != 100 {
		t.Fatalf("q0 = %d, want bucket bound 100", q)
	}
	if q := h.Quantile(1); q != 5000 {
		t.Fatalf("q1 = %d, want observed max 5000", q)
	}
	// Re-fetch with different bounds must keep the original.
	if again := r.Histogram("lat", []simclock.Cycles{1}); again != h {
		t.Fatal("Histogram must return the existing instrument")
	}
}

func TestRegistryDeterministicRendering(t *testing.T) {
	build := func(order []string) string {
		r := NewRegistry()
		for _, n := range order {
			r.Counter("c_" + n).Inc()
			r.Gauge("g_" + n).Set(1)
			r.Histogram("h_"+n, nil).Observe(simclock.FromMicros(3))
		}
		return r.String()
	}
	a := build([]string{"z", "m", "a"})
	b := build([]string{"a", "z", "m"})
	if a != b {
		t.Fatalf("registry rendering depends on creation order:\n%s\nvs\n%s", a, b)
	}
	idx := func(s, sub string) int { return strings.Index(s, sub) }
	if !(idx(a, "c_a") < idx(a, "c_m") && idx(a, "c_m") < idx(a, "c_z")) {
		t.Fatalf("counters not sorted:\n%s", a)
	}
}

func TestRegistryPublish(t *testing.T) {
	r := NewRegistry()
	r.Counter("wakes").Add(7)
	r.Gauge("qdepth").Set(2)
	r.Histogram("hc", nil).Observe(simclock.FromMicros(10))
	set := measure.NewSet()
	r.Publish(set)
	if got := set.Counter("trace.counter.wakes"); got != 7 {
		t.Fatalf("published counter = %g, want 7", got)
	}
	if got := set.Counter("trace.gauge.qdepth"); got != 2 {
		t.Fatalf("published gauge = %g, want 2", got)
	}
	if got := set.Counter("trace.hist.hc.count"); got != 1 {
		t.Fatalf("published hist count = %g, want 1", got)
	}
}

func TestChromeJSONShape(t *testing.T) {
	tr := New(2, 64)
	tr.SelectorName = func(sel int) string {
		if sel == 9 {
			return "hwtask_request"
		}
		return ""
	}
	tr.PDName = func(id int) string { return "vm" }
	// A two-core causal chain under flow id 42.
	tr.Core(0).EmitSpan(simclock.FromMicros(10), simclock.FromMicros(5), KindHwReq, 42, 3, 0)
	tr.Core(1).Emit(simclock.FromMicros(11), KindHwReqSubmit, 42, 3, 1)
	tr.Core(1).Emit(simclock.FromMicros(12), KindPCAPStart, 42, 0, 4096)
	tr.Core(0).Emit(simclock.FromMicros(14), KindCompletionIRQ, 42, 52, 1)
	raw, err := tr.ChromeJSON()
	if err != nil {
		t.Fatalf("ChromeJSON: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var phases []string
	var sawHc, sawMeta bool
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		phases = append(phases, ph)
		if name, _ := e["name"].(string); name == "hc:hwtask_request" {
			sawHc = true
		}
		if ph == "M" {
			sawMeta = true
		}
	}
	if !sawMeta {
		t.Fatal("missing metadata events")
	}
	_ = sawHc // selector naming exercised below
	joined := strings.Join(phases, "")
	for _, ph := range []string{"s", "t", "f", "X", "i"} {
		if !strings.Contains(joined, ph) {
			t.Fatalf("missing phase %q in export; phases = %v", ph, phases)
		}
	}
	// Deterministic export: rendering twice must be byte-identical.
	raw2, _ := tr.ChromeJSON()
	if !bytes.Equal(raw, raw2) {
		t.Fatal("ChromeJSON is not deterministic")
	}
	// Selector naming exercised via a hypercall event.
	tr.Core(0).EmitSpan(simclock.FromMicros(20), 100, KindHypercall, 0, 9, 0)
	raw3, _ := tr.ChromeJSON()
	if !bytes.Contains(raw3, []byte("hc:hwtask_request")) {
		t.Fatal("hypercall slice should carry the resolved selector name")
	}
}

func TestFlightDump(t *testing.T) {
	tr := New(1, 8)
	for i := 0; i < 20; i++ {
		tr.Core(0).Emit(simclock.Cycles(i*660), KindSchedWake, 0, 1, 2)
	}
	d := tr.FlightDump(4)
	if got := strings.Count(d, "sched_wake"); got != 4 {
		t.Fatalf("FlightDump(4) shows %d events, want 4:\n%s", got, d)
	}
	if !strings.Contains(d, "drops=12") {
		t.Fatalf("FlightDump should report drops:\n%s", d)
	}
}
