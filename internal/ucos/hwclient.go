package ucos

import (
	"repro/internal/abi"
	"repro/internal/hwtask"
	"repro/internal/pl"
)

// HwTask is the guest-side handle for an acquired hardware task — the
// "functionalities supporting hardware task access … added as application
// program interfaces" of §V-A. It wraps the granted register interface,
// the completion interrupt, and the consistency protocol of §IV-C.
type HwTask struct {
	Grant   HwGrant
	TaskID  uint16
	doneSem *Sem
}

// Data-section reserved-structure flags (first word of the section),
// from the shared ABI — the kernel writes them, the guest checks them.
const (
	flagOwned        = abi.DataSectFlagOwned
	flagInconsistent = abi.DataSectFlagInconsistent
)

// AcquireHw requests taskID from the Hardware Task Manager. On a
// Reconfig grant it waits for the PCAP download using the polling method
// of §IV-E (delaying a tick between polls so other tasks run). Returns
// nil and the status byte on Busy/Inval.
func (t *Task) AcquireHw(taskID uint16) (*HwTask, uint32) {
	g := t.OS.M.RequestHwTask(taskID)
	if g.Status != hwtask.ReplyOK && g.Status != hwtask.ReplyReconfig {
		return nil, g.Status
	}
	h := &HwTask{Grant: g, TaskID: taskID, doneSem: t.OS.SemCreate(0)}
	if g.IRQ != 0 {
		sem := h.doneSem
		t.OS.RegisterIRQ(g.IRQ, func(int) { sem.Post() })
	}
	if g.Status == hwtask.ReplyReconfig {
		for {
			st := t.OS.M.ReconfigStatus()
			if st == abi.StatusFaulted {
				// The hypervisor exhausted its retry budget on this
				// download: unwind the half-built grant so the caller can
				// back off and re-request a (possibly different) region.
				if g.IRQ != 0 {
					t.OS.M.DisableIRQ(g.IRQ)
					delete(t.OS.irqTable, g.IRQ)
				}
				t.OS.M.ReleaseHwTask(taskID)
				return nil, abi.StatusFaulted
			}
			if st != abi.StatusReconfig {
				break
			}
			t.Exec(60) // poll loop body
			t.Delay(1)
		}
	}
	return h, g.Status
}

// ReleaseHw returns the task to the manager.
func (t *Task) ReleaseHw(h *HwTask) {
	t.OS.M.ReleaseHwTask(h.TaskID)
	if h.Grant.IRQ != 0 {
		t.OS.M.DisableIRQ(h.Grant.IRQ)
		delete(t.OS.irqTable, h.Grant.IRQ)
	}
}

// Consistent checks the state flag in the data section's reserved
// structure (§IV-C: "VM can automatically check the state flag in
// hardware task data section whenever it uses the task").
func (h *HwTask) Consistent(t *Task) bool {
	v, err := t.Ctx.Load32(h.Grant.DataVA)
	return err == nil && v == flagOwned
}

// Run programs the task's register group through the mapped interface,
// starts it with the completion IRQ enabled, and pends on the IRQ.
// srcOff/dstOff are byte offsets inside the data section; reserve the
// first 64 bytes for the consistency structure. Returns false on DMA
// error, inconsistency, or timeout.
func (h *HwTask) Run(t *Task, srcOff, dstOff, length, param uint32, timeoutTicks uint32) bool {
	if !h.Consistent(t) {
		return false
	}
	va := h.Grant.IfaceVA
	if err := t.Ctx.Store32(va+pl.RegSrc, srcOff); err != nil {
		return false
	}
	_ = t.Ctx.Store32(va+pl.RegDst, dstOff)
	_ = t.Ctx.Store32(va+pl.RegLen, length)
	_ = t.Ctx.Store32(va+pl.RegParam, param)
	_ = t.Ctx.Store32(va+pl.RegCtrl, pl.CtrlStart|pl.CtrlIRQEn)
	if !t.SemPend(h.doneSem, timeoutTicks) {
		return false
	}
	// Clear the IRQ latch and check the outcome.
	st, err := t.Ctx.Load32(va + pl.RegStatus)
	_ = t.Ctx.Store32(va+pl.RegIRQStat, 3)
	return err == nil && st == pl.StatusDone
}

// RunPolled is the no-IRQ variant: busy-polls the status register
// (for the ablation comparing §IV-E's two completion methods).
func (h *HwTask) RunPolled(t *Task, srcOff, dstOff, length, param uint32) bool {
	if !h.Consistent(t) {
		return false
	}
	va := h.Grant.IfaceVA
	_ = t.Ctx.Store32(va+pl.RegSrc, srcOff)
	_ = t.Ctx.Store32(va+pl.RegDst, dstOff)
	_ = t.Ctx.Store32(va+pl.RegLen, length)
	_ = t.Ctx.Store32(va+pl.RegParam, param)
	_ = t.Ctx.Store32(va+pl.RegCtrl, pl.CtrlStart)
	for {
		st, err := t.Ctx.Load32(va + pl.RegStatus)
		if err != nil {
			return false
		}
		if st == pl.StatusDone {
			return true
		}
		if st == pl.StatusError {
			return false
		}
		t.Exec(40)
	}
}
