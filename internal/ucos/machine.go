package ucos

import (
	"repro/internal/cpu"
	"repro/internal/simclock"
)

// HwGrant is the decoded result of a hardware-task request: where the
// task's register interface is reachable, which PRR hosts it, which GIC
// interrupt line signals completion, and the data-section address its
// DMA window covers.
type HwGrant struct {
	Status  uint32 // hwtask.Reply* status byte
	PRR     int    // granted region (-1 on failure)
	IRQ     int    // completion interrupt id (0 when none)
	IfaceVA uint32 // register-group address in this OS's address space
	DataVA  uint32 // data-section base in this OS's address space
}

// Machine is the uC/OS-II port interface: everything the kernel needs
// from its platform. The paravirtualized implementation backs each method
// with Mini-NOVA hypercalls (the paper's 17-call porting patch, §V-A);
// the native implementation programs the simulated hardware directly.
type Machine interface {
	// Name labels the machine in traces.
	Name() string
	// NewContext makes an execution context inside this OS's code space.
	NewContext(name string, base, size uint32) *cpu.ExecContext
	// KernelCodeBase is where the guest kernel's text begins.
	KernelCodeBase() uint32
	// TaskCodeBase is where task prio's text begins.
	TaskCodeBase(prio int) uint32
	// Now reads the global cycle counter.
	Now() simclock.Cycles

	// SetIRQEntry registers the OS's interrupt entry point.
	SetIRQEntry(fn func(irq int))
	// EnableIRQ unmasks a line (vGIC under virtualization).
	EnableIRQ(irq int)
	// DisableIRQ masks a line.
	DisableIRQ(irq int)
	// EOI signals completion of a delivered interrupt.
	EOI(irq int)
	// SetTickTimer programs the periodic OS tick.
	SetTickTimer(period simclock.Cycles)
	// CheckPreempt is the chunk boundary: deliver pending interrupts and
	// honor hypervisor preemption (no-op natively).
	CheckPreempt()
	// Dying is closed when the platform is tearing down (hypervisor
	// shutdown); may be nil when the platform never dies underneath the
	// OS (native). Coroutine handoffs select on it to unwind cleanly.
	Dying() <-chan struct{}
	// Idle is the guest's WFI: under virtualization it gives the CPU back
	// to the hypervisor until the next virtual interrupt, so an idle RTOS
	// does not starve lower-priority VMs; natively it is a plain wait.
	Idle()

	// Print writes to the supervised console.
	Print(s string)
	// CacheFlush performs the guest cache-maintenance operation.
	CacheFlush()
	// EnterUserCtx/EnterKernelCtx flip the DACR between guest-kernel and
	// guest-user contexts (Table II; no-op natively where uCOS owns PL1).
	EnterUserCtx()
	EnterKernelCtx()
	// VMID identifies this OS instance.
	VMID() int

	// SetupDataSection builds and registers the hardware-task data
	// section of the given size, returning its base VA (§IV-B).
	SetupDataSection(size uint32) (uint32, bool)
	// RequestHwTask asks the Hardware Task Manager for a task (§IV-E).
	RequestHwTask(taskID uint16) HwGrant
	// ReleaseHwTask gives a held task back.
	ReleaseHwTask(taskID uint16)
	// ReconfigBusy polls the PCAP completion signal (§IV-E polling mode).
	ReconfigBusy() bool
	// ReconfigStatus is the fault-aware poll: StatusReconfig while the
	// download is still in flight, StatusFaulted when the hypervisor's
	// retry budget ran out (the guest must release and re-request), and
	// StatusOK once the region is ready.
	ReconfigStatus() uint32
}
