package ucos

import (
	"strings"

	"repro/internal/abi"
	"repro/internal/cpu"
	"repro/internal/gic"
	"repro/internal/hwtask"
	"repro/internal/measure"
	"repro/internal/mmu"
	"repro/internal/physmem"
	"repro/internal/pl"
	"repro/internal/simclock"
	"repro/internal/timer"
)

// Native memory layout (flat VA==PA, privileged).
const (
	nativeKernelCode = 0x0030_0000
	nativeTaskCode   = 0x0040_0000
	nativeMgrCode    = 0x0050_0000
	nativeDataBase   = 0x0100_0000
	nativeStorePA    = physmem.DDRBase + 0xA0_0000
)

// NativeMachine is the paper's baseline platform: uC/OS-II running
// natively in SVC mode on the bare (simulated) Zynq PS, with the Hardware
// Task Manager "implemented as a uCOS-II function" (§V-B) — a direct call
// with no traps, no world switch and no page-table updates.
type NativeMachine struct {
	Clock  *simclock.Clock
	Bus    *physmem.Bus
	GIC    *gic.GIC
	CPU    *cpu.CPU
	Timer  *timer.PrivateTimer
	Fabric *pl.Fabric
	Mgr    *hwtask.Manager

	actions *hwtask.NativeActions
	mgrCtx  *cpu.ExecContext

	irqEntry func(irq int)
	console  strings.Builder
	dataNext physmem.Addr
	dataWin  pl.Window
	reqSeq   uint32

	// MgrInvocations counts direct manager calls (the native "requests").
	MgrInvocations uint64

	// Probes records the baseline's Table III phases: natively only the
	// manager execution is nonzero — there is no trap, no world switch
	// and no vGIC injection (§V-B: entry/exit/IRQ-entry measured as 0).
	Probes *measure.Set
}

// NewNativeMachine assembles the baseline system: machine, flat address
// space, fabric with the paper's PRR layout, manager with the paper's
// task set, and the given behavioural cores.
func NewNativeMachine(cores map[uint16]pl.Accel) *NativeMachine {
	clock := simclock.New()
	bus := physmem.NewBus()
	g := gic.New()
	c := cpu.New(clock, bus, g)

	caps := hwtask.PaperPRRCapacities()
	fabric := pl.NewFabric(clock, bus, g, caps)
	//detlint:ordered RegisterCore is a keyed insert; registration order is unobservable
	for id, core := range cores {
		fabric.RegisterCore(id, core)
	}

	mgr := hwtask.NewManager(len(caps), nativeMgrCode+0x8000)
	if err := hwtask.InstallTaskSet(mgr, bus, nativeStorePA, caps, hwtask.PaperTaskSet()); err != nil {
		panic(err)
	}

	nm := &NativeMachine{
		Clock:  clock,
		Bus:    bus,
		GIC:    g,
		CPU:    c,
		Timer:  timer.New(clock, g),
		Fabric: fabric,
		Mgr:    mgr,
		actions: &hwtask.NativeActions{
			Fabric:   fabric,
			Sections: map[int]pl.Window{},
			StorePA:  uint32(nativeStorePA),
		},
		dataNext: nativeDataBase,
		Probes:   measure.NewSet(),
	}
	nm.actions.IRQEnable = func(irq int) {
		g.SetPriority(irq, 0x60)
		g.Enable(irq)
	}
	nm.mgrCtx = cpu.NewExecContext(c, "native/hwmgr", nativeMgrCode, 8<<10)

	// Flat privileged address space: sections over RAM and devices, all
	// domain 0 as client, so caches and (section-grained) TLB behave as
	// on the real baseline.
	alloc := mmu.NewFrameAllocator(physmem.DDRBase+0x0390_0000, 4<<20)
	pt := mmu.NewPageTable(bus, alloc)
	for va := uint32(physmem.DDRBase); va < uint32(physmem.DDRBase)+0x0390_0000; va += 1 << 20 {
		pt.MapSection(va, physmem.Addr(va), 0, mmu.APPriv)
	}
	for _, dev := range []uint32{uint32(physmem.AXIGP0Base), 0xF800_0000, 0xF8F0_0000, uint32(physmem.UARTBase)} {
		pt.MapSection(dev, physmem.Addr(dev), 0, mmu.APPriv)
	}
	c.Mode = cpu.ModeSVC
	c.CP15Write(cpu.CP15TTBR0, uint32(pt.Base))
	c.CP15Write(cpu.CP15DACR, uint32(mmu.DomainClient))
	c.CP15Write(cpu.CP15SCTLR, 1)
	c.VFPEnabled = true // no lazy switching natively

	// Interrupt entry: acknowledge and hand to the OS (EOI comes from the
	// OS's ISR epilogue via Machine.EOI).
	c.Vectors.IRQ = func() {
		clock.Advance(2 * 20)
		id := g.Acknowledge(0)
		if id == gic.SpuriousID {
			return
		}
		if nm.irqEntry != nil {
			nm.irqEntry(id)
		}
	}
	g.Enable(gic.PrivateTimerIRQ)
	g.SetPriority(gic.PrivateTimerIRQ, 0x10)
	g.Enable(gic.PCAPIRQ)
	return nm
}

// Name implements Machine.
func (nm *NativeMachine) Name() string { return "native" }

// NewContext implements Machine.
func (nm *NativeMachine) NewContext(name string, base, size uint32) *cpu.ExecContext {
	return cpu.NewExecContext(nm.CPU, name, base, size)
}

// KernelCodeBase implements Machine.
func (nm *NativeMachine) KernelCodeBase() uint32 { return nativeKernelCode }

// TaskCodeBase implements Machine.
func (nm *NativeMachine) TaskCodeBase(prio int) uint32 {
	return nativeTaskCode + uint32(prio)*(16<<10)
}

// Now implements Machine.
func (nm *NativeMachine) Now() simclock.Cycles { return nm.Clock.Now() }

// SetIRQEntry implements Machine.
func (nm *NativeMachine) SetIRQEntry(fn func(irq int)) { nm.irqEntry = fn }

// EnableIRQ implements Machine: direct GIC access (the native OS owns it).
func (nm *NativeMachine) EnableIRQ(irq int) {
	nm.Clock.Advance(20)
	nm.GIC.Enable(irq)
}

// DisableIRQ implements Machine.
func (nm *NativeMachine) DisableIRQ(irq int) {
	nm.Clock.Advance(20)
	nm.GIC.Disable(irq)
}

// EOI implements Machine.
func (nm *NativeMachine) EOI(irq int) {
	nm.Clock.Advance(20)
	nm.GIC.EOI(0, irq)
}

// SetTickTimer implements Machine: the physical private timer.
func (nm *NativeMachine) SetTickTimer(period simclock.Cycles) {
	if period == 0 {
		nm.Timer.Stop()
		return
	}
	nm.Timer.Start(period, false)
}

// CheckPreempt implements Machine: nothing above the OS natively; the
// interrupt poll already happens inside every Exec.
func (nm *NativeMachine) CheckPreempt() {}

// Dying implements Machine: the bare machine never vanishes underneath
// the OS (a nil channel never becomes ready in a select).
func (nm *NativeMachine) Dying() <-chan struct{} { return nil }

// Idle implements Machine: native WFI — advance to the next timer event
// so the spin does not dominate simulation time.
func (nm *NativeMachine) Idle() {
	nm.Clock.Advance(64)
	nm.CPU.PollIRQ()
}

// Print implements Machine: direct UART.
func (nm *NativeMachine) Print(s string) {
	for range s {
		nm.Clock.Advance(20)
	}
	nm.console.WriteString(s)
}

// Console returns everything printed.
func (nm *NativeMachine) Console() string { return nm.console.String() }

// CacheFlush implements Machine.
func (nm *NativeMachine) CacheFlush() { nm.CPU.CP15Write(cpu.CP15DCCISW, 0) }

// EnterUserCtx implements Machine: no privilege split natively.
func (nm *NativeMachine) EnterUserCtx() {}

// EnterKernelCtx implements Machine.
func (nm *NativeMachine) EnterKernelCtx() {}

// VMID implements Machine.
func (nm *NativeMachine) VMID() int { return 0 }

// SetupDataSection implements Machine: carve a physically contiguous
// window and register it with the manager's hwMMU actions.
func (nm *NativeMachine) SetupDataSection(size uint32) (uint32, bool) {
	size = (size + 0xFFF) &^ 0xFFF
	base := nm.dataNext
	nm.dataNext += physmem.Addr(size)
	nm.dataWin = pl.Window{Base: base, Size: size, Valid: true}
	nm.actions.Sections[0] = nm.dataWin
	return uint32(base), true
}

// RequestHwTask implements Machine: the direct manager call of the native
// baseline — no hypercall, no context switch.
func (nm *NativeMachine) RequestHwTask(taskID uint16) HwGrant {
	nm.MgrInvocations++
	nm.reqSeq++
	if !nm.Fabric.PCAP.Busy() {
		for r := range nm.Mgr.PRRs {
			nm.Mgr.NotifyLoaded(r)
		}
	}
	req := hwtask.Request{
		Kind:     hwtask.ReqAcquire,
		ReqID:    nm.reqSeq,
		ClientID: 0,
		TaskID:   taskID,
		DataVA:   uint32(nm.dataWin.Base),
	}
	t0 := nm.Clock.Now()
	reply := nm.Mgr.Handle(nm.mgrCtx, req, nm.actions)
	d := nm.Clock.Now() - t0
	nm.Probes.Add(measure.PhaseMgrExec, d)
	g := HwGrant{
		Status: hwtask.StatusOf(reply),
		PRR:    hwtask.PRROf(reply),
		IRQ:    hwtask.IRQOf(reply),
		DataVA: uint32(nm.dataWin.Base),
	}
	if g.PRR >= 0 {
		g.IfaceVA = uint32(nm.Fabric.GroupBase(g.PRR))
	}
	return g
}

// ReleaseHwTask implements Machine.
func (nm *NativeMachine) ReleaseHwTask(taskID uint16) {
	nm.reqSeq++
	req := hwtask.Request{Kind: hwtask.ReqRelease, ReqID: nm.reqSeq, ClientID: 0, TaskID: taskID}
	nm.Mgr.Handle(nm.mgrCtx, req, nm.actions)
}

// ReconfigBusy implements Machine.
func (nm *NativeMachine) ReconfigBusy() bool { return nm.Fabric.PCAP.Busy() }

// ReconfigStatus implements Machine: the native baseline has no fault
// plan, so the download either runs or is done.
func (nm *NativeMachine) ReconfigStatus() uint32 {
	if nm.Fabric.PCAP.Busy() {
		return abi.StatusReconfig
	}
	return abi.StatusOK
}

// InstallBitstreams gives tests access to the default store base.
func (nm *NativeMachine) StorePA() physmem.Addr { return nativeStorePA }

var _ Machine = (*NativeMachine)(nil)
var _ Machine = (*VirtMachine)(nil)
