// Package ucos implements a uC/OS-II-style real-time kernel — the guest
// operating system of the paper's evaluation (§V-A). Like the original,
// it is a strictly priority-based preemptive kernel: 64 priority levels,
// at most one task per level, the highest-priority ready task always
// runs, and a periodic tick drives time delays.
//
// The port layer is swappable, exactly as the paper's porting patch
// (~200 LoC) suggests:
//
//   - VirtMachine (virt.go) is the paravirtualized port: every sensitive
//     operation — timer programming, interrupt control, cache/TLB
//     maintenance, page-table edits, hardware-task access, shared I/O —
//     becomes a Mini-NOVA hypercall, and interrupts arrive as vGIC
//     injections recorded in a local vIRQ table (§V-A's bullet list).
//   - NativeMachine (native.go) runs the same kernel in SVC mode on the
//     bare machine model: the paper's baseline, where the tick comes
//     straight from the private timer and the hardware-task manager is a
//     direct function call.
package ucos

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/simclock"
)

// NumPriorities is uC/OS-II's task-priority range (0 = highest).
const NumPriorities = 64

// IdlePrio is the reserved lowest priority for the built-in idle loop.
const IdlePrio = NumPriorities - 1

// TickIRQ is the virtual interrupt line carrying the OS tick (the A9
// private-timer PPI number, virtualized by Mini-NOVA).
const TickIRQ = 29

// taskState is a TCB lifecycle state.
type taskState int

const (
	stateDormant taskState = iota
	stateReady
	stateDelayed
	statePending // blocked on a semaphore/mailbox/queue
	stateDone
)

// TCB is a task control block.
type TCB struct {
	Prio  int
	Name  string
	body  func(t *Task)
	state taskState
	delay uint32 // remaining ticks when delayed (also pend timeout)

	pendingOn interface{} // the sync object the task pends on
	pendOK    bool        // pend satisfied (vs timeout)

	resumeCh chan struct{}
	started  bool
	os       *OS
	ctx      *cpu.ExecContext

	// Stats
	Activations uint64
}

// Task is the handle passed to a task body: its execution context plus
// the OS services it may call. All compute must go through Exec/Touch.
type Task struct {
	OS  *OS
	TCB *TCB
	Ctx *cpu.ExecContext
}

// OS is one uC/OS-II instance.
type OS struct {
	Name string
	M    Machine

	kctx    *cpu.ExecContext // kernel (scheduler/tick) context
	tcbs    [NumPriorities]*TCB
	current *TCB

	Ticks      uint64
	TickPeriod simclock.Cycles

	needSwitch bool
	stopped    bool

	// Local vIRQ table (§V-A: "a local table is built to record the
	// virtual IRQs states. uCOS-II can only access the local table to
	// handle the interrupts").
	irqTable map[int]func(irq int)
	pending  []int

	yieldCh chan struct{}

	// dying is closed by Shutdown: every parked task goroutine unwinds.
	dying    chan struct{}
	shutdown bool

	// Deadline stops the scheduler loop when the simulated clock passes
	// it (0 = run forever; the native harness sets it).
	Deadline simclock.Cycles

	// Stats
	Switches  uint64
	IdleSpins uint64
}

// NewOS builds an instance over a machine port. Code layout: the guest
// kernel's hot paths occupy a 12 KB region (uC/OS-II compiles to roughly
// that); each task body gets its own 6 KB code window so tasks contend
// for I-cache like separately-linked objects.
func NewOS(name string, m Machine) *OS {
	os := &OS{
		Name:       name,
		M:          m,
		TickPeriod: simclock.FromMillis(1),
		irqTable:   make(map[int]func(int)),
		yieldCh:    make(chan struct{}),
		dying:      make(chan struct{}),
	}
	os.kctx = m.NewContext(name+"/kernel", m.KernelCodeBase(), 12<<10)
	return os
}

// TaskCreate registers a task at prio (0 = highest). Mirrors
// OSTaskCreate: one task per priority; returns an error on collision.
func (os *OS) TaskCreate(name string, prio int, body func(t *Task)) error {
	if prio < 0 || prio >= NumPriorities {
		return fmt.Errorf("ucos: priority %d out of range", prio)
	}
	if os.tcbs[prio] != nil {
		return fmt.Errorf("ucos: priority %d already taken by %s", prio, os.tcbs[prio].Name)
	}
	t := &TCB{
		Prio:     prio,
		Name:     name,
		body:     body,
		state:    stateReady,
		resumeCh: make(chan struct{}),
		os:       os,
		ctx:      os.M.NewContext(os.Name+"/"+name, os.M.TaskCodeBase(prio), 6<<10),
	}
	os.tcbs[prio] = t
	return nil
}

// highestReady returns the ready TCB with the best (lowest) priority.
func (os *OS) highestReady() *TCB {
	for p := 0; p < NumPriorities; p++ {
		if t := os.tcbs[p]; t != nil && t.state == stateReady {
			return t
		}
	}
	return nil
}

// Run boots the kernel: install the tick, then schedule until stopped.
// Under virtualization this is the PD's main and never returns; the
// native harness sets Deadline.
func (os *OS) Run() {
	os.M.SetIRQEntry(os.irqEntry)
	os.irqTable[TickIRQ] = os.tickHandler
	os.M.EnableIRQ(TickIRQ)
	os.M.SetTickTimer(os.TickPeriod)
	os.loop()
}

// loop is the scheduler proper, shared by Run (cold boot) and ResumeLoop
// (re-entry after a checkpoint restore, which must skip the boot
// hypercalls because their effects live in the restored machine state).
func (os *OS) loop() {
	for !os.stopped {
		if os.deadOrDying() {
			return
		}
		if os.Deadline != 0 && os.M.Now() >= os.Deadline {
			break
		}
		os.drainVIRQs(os.kctx)
		t := os.highestReady()
		if t == nil {
			// Built-in idle task: a short spin, then the port's WFI (under
			// virtualization this parks the VM until the next vIRQ so
			// lower-priority VMs can run).
			os.IdleSpins++
			os.kctx.Exec(64)
			os.M.CheckPreempt()
			os.M.Idle()
			continue
		}
		os.dispatch(t)
	}
}

// Stop ends the scheduler loop at the next opportunity.
func (os *OS) Stop() { os.stopped = true }

// taskKill unwinds a task goroutine during Shutdown.
type taskKill struct{}

// IsKillSentinel marks the value as a cooperative-shutdown panic.
func (taskKill) IsKillSentinel() {}

// Shutdown stops the scheduler and unwinds every parked task goroutine.
// The OS is unusable afterwards. It is safe to call more than once.
func (os *OS) Shutdown() {
	if os.shutdown {
		return
	}
	os.shutdown = true
	os.stopped = true
	close(os.dying)
}

// deadOrDying reports whether the platform or the OS is tearing down.
func (os *OS) deadOrDying() bool {
	select {
	case <-os.dying:
		return true
	default:
	}
	if d := os.M.Dying(); d != nil {
		select {
		case <-d:
			return true
		default:
		}
	}
	return false
}

// dispatch switches to a task until it yields back.
func (os *OS) dispatch(t *TCB) {
	os.current = t
	os.needSwitch = false
	os.Switches++
	t.Activations++
	os.kctx.Exec(40) // OSSched + context switch (guest-level)
	if !t.started {
		t.started = true
		go t.taskWrapper()
	}
	mDying := os.M.Dying()
	select {
	case t.resumeCh <- struct{}{}:
	case <-os.dying:
		return
	case <-mDying:
		return
	}
	select {
	case <-os.yieldCh:
	case <-os.dying:
	case <-mDying:
	}
	os.current = nil
}

// taskWrapper hosts a task body in its own goroutine and absorbs the
// cooperative-shutdown unwind (from this OS or from the hypervisor).
func (t *TCB) taskWrapper() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(interface{ IsKillSentinel() }); ok {
				return
			}
			panic(r)
		}
	}()
	os := t.os
	select {
	case <-t.resumeCh:
	case <-os.dying:
		return
	}
	t.body(&Task{OS: os, TCB: t, Ctx: t.ctx})
	t.state = stateDone
	os.current = nil
	select {
	case os.yieldCh <- struct{}{}:
	case <-os.dying:
	}
}

// yieldToScheduler hands control from a task back to the OS loop.
func (t *TCB) yieldToScheduler() {
	os := t.os
	select {
	case os.yieldCh <- struct{}{}:
	case <-os.dying:
		panic(taskKill{})
	}
	select {
	case <-t.resumeCh:
	case <-os.dying:
		panic(taskKill{})
	}
}

// irqEntry is the VM's interrupt entry (registered with the machine): it
// records the IRQ in the local table's pending list; handlers run at the
// next dispatch boundary, as uCOS ISRs defer work to task level.
func (os *OS) irqEntry(irq int) {
	os.pending = append(os.pending, irq)
}

// drainVIRQs dispatches recorded interrupts through the local table.
func (os *OS) drainVIRQs(ctx *cpu.ExecContext) {
	for len(os.pending) > 0 {
		irq := os.pending[0]
		os.pending = os.pending[1:]
		ctx.Exec(18) // ISR prologue
		if h := os.irqTable[irq]; h != nil {
			h(irq)
		}
		os.M.EOI(irq)
		ctx.Exec(10) // ISR epilogue
	}
}

// tickHandler is OSTimeTick: advance time, expire delays and pend
// timeouts, and request a reschedule when somebody woke.
func (os *OS) tickHandler(int) {
	os.Ticks++
	os.kctx.Exec(30)
	for p := 0; p < NumPriorities; p++ {
		t := os.tcbs[p]
		if t == nil {
			continue
		}
		if (t.state == stateDelayed || t.state == statePending) && t.delay > 0 {
			t.delay--
			if t.delay == 0 {
				if t.state == statePending {
					t.pendOK = false // timeout
					removeWaiter(t)
				}
				t.state = stateReady
				os.needSwitch = true
			}
		}
		os.kctx.Touch(os.M.KernelCodeBase()+0xC000+uint32(p)*16, true)
	}
}

// RegisterIRQ installs a guest handler for an interrupt line in the
// local vIRQ table and enables the line in the vGIC.
func (os *OS) RegisterIRQ(irq int, h func(irq int)) {
	os.irqTable[irq] = h
	os.M.EnableIRQ(irq)
}

// InterruptTask services: the part of the Task API that can trigger a
// reschedule.

// checkpoint is the task-side chunk boundary: deliver interrupts, honor
// hypervisor preemption, and switch tasks if a higher-priority one woke.
func (t *Task) checkpoint() {
	os := t.OS
	if os.Deadline != 0 && os.M.Now() >= os.Deadline && !os.stopped {
		// Horizon reached (native harness): park this task and return to
		// the scheduler loop so Run can exit.
		os.stopped = true
		t.TCB.state = stateReady
		t.TCB.yieldToScheduler()
		return
	}
	t.OS.drainVIRQs(t.Ctx)
	t.OS.M.CheckPreempt()
	if t.OS.needSwitch {
		hr := t.OS.highestReady()
		if hr != nil && hr.Prio < t.TCB.Prio {
			t.TCB.os.current = nil
			t.TCB.yieldToScheduler()
		} else {
			t.OS.needSwitch = false
		}
	}
}

// Exec charges n instructions of task work, then hits a checkpoint.
func (t *Task) Exec(n int) {
	t.Ctx.Exec(n)
	t.checkpoint()
}

// Touch charges one data access.
func (t *Task) Touch(va uint32, write bool) { t.Ctx.Touch(va, write) }

// TouchRange streams a buffer.
func (t *Task) TouchRange(va, size, stride uint32, write bool) {
	t.Ctx.TouchRange(va, size, stride, write)
	t.checkpoint()
}

// Delay is OSTimeDly: block for n ticks (n >= 1).
func (t *Task) Delay(ticks uint32) {
	if ticks == 0 {
		ticks = 1
	}
	t.TCB.state = stateDelayed
	t.TCB.delay = ticks
	t.TCB.yieldToScheduler()
}

// Yield gives equal-priority... uC/OS-II has no round-robin; Yield just
// re-enters the scheduler (useful before long waits).
func (t *Task) Yield() {
	t.TCB.yieldToScheduler()
}

// TimeGet is OSTimeGet: the tick counter.
func (t *Task) TimeGet() uint64 { return t.OS.Ticks }

// Print emits supervised console output (one hypercall per rune in the
// paravirtualized port, as UART access is supervised, §V-A).
func (t *Task) Print(s string) { t.OS.M.Print(s) }
