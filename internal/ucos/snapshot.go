// Guest-side checkpointing: capture a quiesced uC/OS-II instance as a
// plain-data Snapshot and rebuild a live instance from it inside a fresh
// (cloned) protection domain. The hypervisor-side half — registers, MMU,
// vGIC, guest RAM — lives in internal/checkpoint and internal/nova; this
// file handles only guest-kernel state the hypervisor cannot see: TCBs,
// tick counters, the local vIRQ table's pending list, and the cache/TLB
// cursors of every execution context.
//
// A snapshot is taken while the instance is parked in the idle loop
// (inside Machine.Idle, i.e. a HcSuspend hypercall): no task is current,
// so every task goroutine is either unstarted or parked at the top of a
// Delay and can be re-hosted on a fresh goroutine without capturing Go
// stacks. Restore relies on the tasks' bodies being loop-shaped with the
// Delay at the bottom: a re-created task resumes at the loop top, which
// charges the same cycles the parked original would have.
package ucos

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/nova"
	"repro/internal/simclock"
)

// TaskSnap is the checkpointed state of one TCB.
type TaskSnap struct {
	Prio        int
	Name        string
	State       int // taskState ordinal
	Delay       uint32
	Activations uint64
	Ctx         cpu.ExecState
}

// MachineSnap is the VirtMachine's allocation-cursor state.
type MachineSnap struct {
	DataVA    uint32
	DataSize  uint32
	IfaceNext uint32
	RamNext   uint32
}

// Snapshot is the full guest-kernel state of a quiesced OS instance.
type Snapshot struct {
	Name       string
	Ticks      uint64
	TickPeriod simclock.Cycles
	Switches   uint64
	IdleSpins  uint64
	NeedSwitch bool
	Pending    []int // local vIRQ table pending list
	KCtx       cpu.ExecState
	Tasks      []TaskSnap
	Mach       MachineSnap
}

// Snapshot captures the instance's state. It fails unless the OS is
// quiesced (no task current — the scheduler must be parked in Idle) and
// refuses tasks pending on sync objects, whose wait-queue position lives
// in pointers a snapshot cannot carry.
func (os *OS) Snapshot() (*Snapshot, error) {
	if os.current != nil {
		return nil, fmt.Errorf("ucos: snapshot of %s: task %s is current (not quiesced)", os.Name, os.current.Name)
	}
	s := &Snapshot{
		Name:       os.Name,
		Ticks:      os.Ticks,
		TickPeriod: os.TickPeriod,
		Switches:   os.Switches,
		IdleSpins:  os.IdleSpins,
		NeedSwitch: os.needSwitch,
		Pending:    append([]int(nil), os.pending...),
		KCtx:       os.kctx.SaveState(),
	}
	for p := 0; p < NumPriorities; p++ {
		t := os.tcbs[p]
		if t == nil {
			continue
		}
		if t.state == statePending {
			return nil, fmt.Errorf("ucos: snapshot of %s: task %s pends on a sync object", os.Name, t.Name)
		}
		s.Tasks = append(s.Tasks, TaskSnap{
			Prio:        t.Prio,
			Name:        t.Name,
			State:       int(t.state),
			Delay:       t.delay,
			Activations: t.Activations,
			Ctx:         t.ctx.SaveState(),
		})
	}
	if vm, ok := os.M.(*VirtMachine); ok {
		s.Mach = MachineSnap{
			DataVA:    vm.dataVA,
			DataSize:  vm.dataSize,
			IfaceNext: vm.ifaceNext,
			RamNext:   vm.ramNext,
		}
	}
	return s, nil
}

// Restore overwrites this (freshly built, tasks already re-created)
// instance's state with a snapshot's. Task bodies come from the caller's
// TaskCreate calls — a snapshot carries no code — so every checkpointed
// priority must have been re-created. Restored tasks stay unstarted; the
// first dispatch lazily hosts them on fresh goroutines, which costs the
// same as resuming a parked one (dispatch charges unconditionally).
func (os *OS) Restore(s *Snapshot) error {
	os.Ticks = s.Ticks
	os.TickPeriod = s.TickPeriod
	os.Switches = s.Switches
	os.IdleSpins = s.IdleSpins
	os.needSwitch = s.NeedSwitch
	os.pending = append(os.pending[:0], s.Pending...)
	os.kctx.RestoreState(s.KCtx)
	for _, ts := range s.Tasks {
		t := os.tcbs[ts.Prio]
		if t == nil {
			return fmt.Errorf("ucos: restore into %s: no task at priority %d (snapshot has %s)", os.Name, ts.Prio, ts.Name)
		}
		t.state = taskState(ts.State)
		t.delay = ts.Delay
		t.Activations = ts.Activations
		t.ctx.RestoreState(ts.Ctx)
	}
	return nil
}

// AttachResumeHandlers re-installs the host-side halves of boot — the
// vGIC entry callback and the tick handler in the local table — without
// issuing the boot hypercalls (EnableIRQ, SetTickTimer): their effects
// are machine state the hypervisor restored with the PD.
func (os *OS) AttachResumeHandlers() {
	os.M.SetIRQEntry(os.irqEntry)
	os.irqTable[TickIRQ] = os.tickHandler
}

// ResumeLoop re-enters the scheduler after a restore, skipping boot.
func (os *OS) ResumeLoop() { os.loop() }

// ResumedGuest adapts a Snapshot to nova.Guest: the guest body installed
// in a cloned or restored-in-place PD. Where Guest boots an OS from
// scratch, ResumedGuest rebuilds one from the snapshot and re-enters the
// scheduler loop behind a replayed HcSuspend exit — the clone wakes
// exactly where the template parked.
type ResumedGuest struct {
	GuestName string
	Snap      *Snapshot
	// Setup re-creates the instance's tasks (bodies are code, not data —
	// the snapshot cannot carry them). It must register the same
	// priorities the checkpointed instance had.
	Setup func(os *OS)
	// OS is populated when the PD first runs.
	OS *OS
}

// Name implements nova.Guest.
func (g *ResumedGuest) Name() string { return g.GuestName }

// RunSlice implements nova.Guest. Order matters: cursors and task state
// are restored before the suspend-exit replay, so by the time simulated
// time moves again the instance is indistinguishable from the template
// at its checkpoint.
func (g *ResumedGuest) RunSlice(env *nova.Env) {
	m := NewVirtMachine(env)
	m.RestoreCursors(g.Snap.Mach)
	g.OS = NewOS(g.GuestName, m)
	defer g.OS.Shutdown()
	if g.Setup != nil {
		g.Setup(g.OS)
	}
	if err := g.OS.Restore(g.Snap); err != nil {
		panic(err)
	}
	g.OS.AttachResumeHandlers()
	env.ResumeSuspendExit()
	env.CheckPreempt()
	g.OS.ResumeLoop()
}
