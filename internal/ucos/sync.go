package ucos

// uC/OS-II synchronization primitives: counting semaphores, mailboxes and
// message queues. Waiters are released in priority order (uC/OS-II
// semantics), not FIFO.

// Sem is a counting semaphore (OSSemCreate).
type Sem struct {
	os      *OS
	count   int
	waiters []*TCB
}

// SemCreate makes a semaphore with an initial count.
func (os *OS) SemCreate(initial int) *Sem {
	return &Sem{os: os, count: initial}
}

func removeWaiter(t *TCB) {
	switch obj := t.pendingOn.(type) {
	case *Sem:
		obj.removeWaiter(t)
	case *Mbox:
		obj.removeWaiter(t)
	case *Queue:
		obj.removeWaiter(t)
	}
	t.pendingOn = nil
}

func (s *Sem) removeWaiter(t *TCB) {
	for i, w := range s.waiters {
		if w == t {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return
		}
	}
}

// bestWaiter pops the highest-priority waiter.
func popBest(ws *[]*TCB) *TCB {
	if len(*ws) == 0 {
		return nil
	}
	best := 0
	for i, w := range *ws {
		if w.Prio < (*ws)[best].Prio {
			best = i
		}
	}
	t := (*ws)[best]
	*ws = append((*ws)[:best], (*ws)[best+1:]...)
	return t
}

// Pend is OSSemPend: decrement or block. timeout is in ticks (0 = wait
// forever). Returns false on timeout.
func (t *Task) SemPend(s *Sem, timeout uint32) bool {
	t.Ctx.Exec(35)
	if s.count > 0 {
		s.count--
		return true
	}
	tcb := t.TCB
	tcb.state = statePending
	tcb.delay = timeout
	tcb.pendingOn = s
	tcb.pendOK = false
	s.waiters = append(s.waiters, tcb)
	tcb.yieldToScheduler()
	return tcb.pendOK
}

// SemPost is OSSemPost: release the best waiter or bank the count.
// Post is legal from ISR context too (it only mutates kernel state).
func (s *Sem) Post() {
	if w := popBest(&s.waiters); w != nil {
		w.pendOK = true
		w.pendingOn = nil
		w.delay = 0
		w.state = stateReady
		s.os.needSwitch = true
		return
	}
	s.count++
}

// SemPost from a task charges the call path.
func (t *Task) SemPost(s *Sem) {
	t.Ctx.Exec(30)
	s.Post()
	t.checkpoint()
}

// Mbox is a one-slot mailbox (OSMbox*).
type Mbox struct {
	os      *OS
	full    bool
	msg     uint32
	waiters []*TCB
}

// MboxCreate makes an empty mailbox.
func (os *OS) MboxCreate() *Mbox { return &Mbox{os: os} }

func (m *Mbox) removeWaiter(t *TCB) {
	for i, w := range m.waiters {
		if w == t {
			m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
			return
		}
	}
}

// MboxPend waits for a message. Returns (msg, ok).
func (t *Task) MboxPend(m *Mbox, timeout uint32) (uint32, bool) {
	t.Ctx.Exec(35)
	if m.full {
		m.full = false
		return m.msg, true
	}
	tcb := t.TCB
	tcb.state = statePending
	tcb.delay = timeout
	tcb.pendingOn = m
	tcb.pendOK = false
	m.waiters = append(m.waiters, tcb)
	tcb.yieldToScheduler()
	if tcb.pendOK {
		return m.msg, true
	}
	return 0, false
}

// MboxPost delivers a message; fails (returns false) when full and no
// waiter exists (uC/OS-II returns OS_MBOX_FULL).
func (m *Mbox) Post(msg uint32) bool {
	if w := popBest(&m.waiters); w != nil {
		m.msg = msg
		w.pendOK = true
		w.pendingOn = nil
		w.delay = 0
		w.state = stateReady
		m.os.needSwitch = true
		return true
	}
	if m.full {
		return false
	}
	m.msg = msg
	m.full = true
	return true
}

// MboxPost from a task charges the call path.
func (t *Task) MboxPost(m *Mbox, msg uint32) bool {
	t.Ctx.Exec(30)
	ok := m.Post(msg)
	t.checkpoint()
	return ok
}

// Queue is a fixed-capacity FIFO message queue (OSQ*).
type Queue struct {
	os      *OS
	buf     []uint32
	waiters []*TCB
	cap     int
}

// QueueCreate makes a queue holding up to capacity messages.
func (os *OS) QueueCreate(capacity int) *Queue {
	return &Queue{os: os, cap: capacity}
}

func (q *Queue) removeWaiter(t *TCB) {
	for i, w := range q.waiters {
		if w == t {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return
		}
	}
}

// QueuePend waits for a message.
func (t *Task) QueuePend(q *Queue, timeout uint32) (uint32, bool) {
	t.Ctx.Exec(40)
	if len(q.buf) > 0 {
		msg := q.buf[0]
		q.buf = q.buf[1:]
		return msg, true
	}
	tcb := t.TCB
	tcb.state = statePending
	tcb.delay = timeout
	tcb.pendingOn = q
	tcb.pendOK = false
	q.waiters = append(q.waiters, tcb)
	tcb.yieldToScheduler()
	if !tcb.pendOK {
		return 0, false
	}
	msg := q.buf[0]
	q.buf = q.buf[1:]
	return msg, true
}

// Post enqueues a message (false when full).
func (q *Queue) Post(msg uint32) bool {
	if len(q.buf) >= q.cap {
		return false
	}
	q.buf = append(q.buf, msg)
	if w := popBest(&q.waiters); w != nil {
		w.pendOK = true
		w.pendingOn = nil
		w.delay = 0
		w.state = stateReady
		q.os.needSwitch = true
	}
	return true
}

// QueuePost from a task charges the call path.
func (t *Task) QueuePost(q *Queue, msg uint32) bool {
	t.Ctx.Exec(35)
	ok := q.Post(msg)
	t.checkpoint()
	return ok
}
