package ucos

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/hwtask"
	"repro/internal/pl"
	"repro/internal/simclock"
)

func paperCores() map[uint16]pl.Accel {
	cores := map[uint16]pl.Accel{}
	for _, id := range hwtask.FFTTaskIDs {
		cores[id] = apps.FFTCore{}
	}
	for _, id := range hwtask.QAMTaskIDs {
		cores[id] = apps.QAMCore{}
	}
	return cores
}

// nativeOS builds a native uC/OS-II, runs setup, and executes until the
// given simulated horizon.
func nativeOS(t *testing.T, horizon simclock.Cycles, setup func(os *OS)) (*OS, *NativeMachine) {
	t.Helper()
	nm := NewNativeMachine(paperCores())
	os := NewOS("native-ucos", nm)
	setup(os)
	os.Deadline = nm.Now() + horizon
	os.Run()
	os.Shutdown()
	return os, nm
}

func TestTaskPriorityScheduling(t *testing.T) {
	var order []string
	nativeOS(t, simclock.FromMillis(5), func(os *OS) {
		os.TaskCreate("low", 20, func(task *Task) {
			order = append(order, "low")
			task.Exec(100)
		})
		os.TaskCreate("high", 5, func(task *Task) {
			order = append(order, "high")
			task.Exec(100)
		})
	})
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Errorf("execution order = %v, want [high low]", order)
	}
}

func TestOneTaskPerPriority(t *testing.T) {
	nm := NewNativeMachine(paperCores())
	os := NewOS("t", nm)
	if err := os.TaskCreate("a", 7, func(*Task) {}); err != nil {
		t.Fatal(err)
	}
	if err := os.TaskCreate("b", 7, func(*Task) {}); err == nil {
		t.Error("duplicate priority accepted (uC/OS-II allows one task per level)")
	}
	if err := os.TaskCreate("c", NumPriorities, func(*Task) {}); err == nil {
		t.Error("out-of-range priority accepted")
	}
}

func TestTickAndDelay(t *testing.T) {
	var wakes []uint64
	os, _ := nativeOS(t, simclock.FromMillis(12), func(os *OS) {
		os.TaskCreate("periodic", 10, func(task *Task) {
			for i := 0; i < 5; i++ {
				wakes = append(wakes, task.TimeGet())
				task.Delay(2)
			}
		})
	})
	if os.Ticks < 10 {
		t.Fatalf("only %d ticks in 12ms at 1ms period", os.Ticks)
	}
	if len(wakes) != 5 {
		t.Fatalf("task woke %d times, want 5", len(wakes))
	}
	for i := 1; i < len(wakes); i++ {
		if d := wakes[i] - wakes[i-1]; d != 2 {
			t.Errorf("wake %d after %d ticks, want 2", i, d)
		}
	}
}

func TestDelayedTaskYieldsToLowerPriority(t *testing.T) {
	progress := 0
	nativeOS(t, simclock.FromMillis(6), func(os *OS) {
		os.TaskCreate("sleeper", 5, func(task *Task) {
			for {
				task.Delay(1)
			}
		})
		os.TaskCreate("worker", 30, func(task *Task) {
			for {
				task.Exec(200)
				progress++
			}
		})
	})
	if progress == 0 {
		t.Error("low-priority task starved by a sleeping high-priority task")
	}
}

func TestPreemptionOnWake(t *testing.T) {
	// A high-priority task waking from Delay must preempt the running
	// low-priority task at its next checkpoint.
	var trace []string
	nativeOS(t, simclock.FromMillis(4), func(os *OS) {
		os.TaskCreate("hi", 3, func(task *Task) {
			task.Delay(2)
			trace = append(trace, "hi-woke")
		})
		os.TaskCreate("lo", 40, func(task *Task) {
			for i := 0; i < 10000; i++ {
				task.Exec(500)
				if len(trace) > 0 {
					trace = append(trace, "lo-saw-it")
					return
				}
			}
		})
	})
	if len(trace) < 2 || trace[0] != "hi-woke" || trace[1] != "lo-saw-it" {
		t.Errorf("trace = %v, want preemption mid-loop", trace)
	}
}

func TestSemaphore(t *testing.T) {
	var got []int
	nativeOS(t, simclock.FromMillis(8), func(os *OS) {
		sem := os.SemCreate(0)
		os.TaskCreate("consumer", 8, func(task *Task) {
			for i := 0; i < 3; i++ {
				if task.SemPend(sem, 0) {
					got = append(got, i)
				}
			}
		})
		os.TaskCreate("producer", 12, func(task *Task) {
			for i := 0; i < 3; i++ {
				task.Delay(1)
				task.SemPost(sem)
			}
		})
	})
	if len(got) != 3 {
		t.Errorf("consumer completed %d pends, want 3", len(got))
	}
}

func TestSemTimeout(t *testing.T) {
	timedOut := false
	nativeOS(t, simclock.FromMillis(6), func(os *OS) {
		sem := os.SemCreate(0)
		os.TaskCreate("waiter", 8, func(task *Task) {
			timedOut = !task.SemPend(sem, 3)
		})
	})
	if !timedOut {
		t.Error("SemPend with no poster did not time out")
	}
}

func TestSemWakesPriorityOrder(t *testing.T) {
	var order []int
	nativeOS(t, simclock.FromMillis(10), func(os *OS) {
		sem := os.SemCreate(0)
		for _, prio := range []int{20, 10, 30} {
			p := prio
			os.TaskCreate("w", p, func(task *Task) {
				if task.SemPend(sem, 0) {
					order = append(order, p)
				}
			})
		}
		os.TaskCreate("poster", 40, func(task *Task) {
			task.Delay(2)
			for i := 0; i < 3; i++ {
				task.SemPost(sem)
				task.Delay(1)
			}
		})
	})
	if len(order) != 3 || order[0] != 10 || order[1] != 20 || order[2] != 30 {
		t.Errorf("wake order = %v, want priority order [10 20 30]", order)
	}
}

func TestMailbox(t *testing.T) {
	var got uint32
	nativeOS(t, simclock.FromMillis(6), func(os *OS) {
		mb := os.MboxCreate()
		os.TaskCreate("rx", 8, func(task *Task) {
			if v, ok := task.MboxPend(mb, 0); ok {
				got = v
			}
		})
		os.TaskCreate("tx", 12, func(task *Task) {
			task.Delay(1)
			task.MboxPost(mb, 0xBEEF)
		})
	})
	if got != 0xBEEF {
		t.Errorf("mailbox delivered %#x, want 0xBEEF", got)
	}
}

func TestQueueFIFO(t *testing.T) {
	var got []uint32
	nativeOS(t, simclock.FromMillis(8), func(os *OS) {
		q := os.QueueCreate(8)
		os.TaskCreate("rx", 8, func(task *Task) {
			for i := 0; i < 4; i++ {
				if v, ok := task.QueuePend(q, 0); ok {
					got = append(got, v)
				}
			}
		})
		os.TaskCreate("tx", 12, func(task *Task) {
			task.Delay(1)
			for i := uint32(1); i <= 4; i++ {
				task.QueuePost(q, i*11)
			}
		})
	})
	want := []uint32{11, 22, 33, 44}
	if len(got) != 4 {
		t.Fatalf("received %d messages, want 4", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("msg %d = %d, want %d (FIFO)", i, got[i], want[i])
		}
	}
}

func TestQueueFullRejects(t *testing.T) {
	nm := NewNativeMachine(paperCores())
	os := NewOS("t", nm)
	q := os.QueueCreate(2)
	if !q.Post(1) || !q.Post(2) {
		t.Fatal("posts to empty queue failed")
	}
	if q.Post(3) {
		t.Error("post to full queue succeeded")
	}
}

func TestPrintReachesConsole(t *testing.T) {
	_, nm := nativeOS(t, simclock.FromMillis(2), func(os *OS) {
		os.TaskCreate("hello", 10, func(task *Task) {
			task.Print("hello-native")
		})
	})
	if !strings.Contains(nm.Console(), "hello-native") {
		t.Errorf("console = %q", nm.Console())
	}
}

func TestNativeHwTaskRoundTrip(t *testing.T) {
	var status uint32 = 999
	ok := false
	var grant HwGrant
	_, nm := nativeOS(t, simclock.FromMillis(80), func(os *OS) {
		os.TaskCreate("hw", 10, func(task *Task) {
			va, _ := task.OS.M.SetupDataSection(64 << 10)
			_ = va
			h, st := task.AcquireHw(hwtask.TaskQAM16)
			status = st
			if h == nil {
				return
			}
			grant = h.Grant
			ok = h.Run(task, 0x100, 0x800, 64, 16, 50)
		})
	})
	if status != hwtask.ReplyReconfig {
		t.Fatalf("first acquire status = %d, want Reconfig (cold PRR)", status)
	}
	if !ok {
		t.Fatal("hardware task run failed")
	}
	if grant.PRR < 0 || grant.IRQ == 0 {
		t.Errorf("grant = %+v", grant)
	}
	if nm.Fabric.PRRs[grant.PRR].Runs != 1 {
		t.Errorf("PRR%d runs = %d, want 1", grant.PRR, nm.Fabric.PRRs[grant.PRR].Runs)
	}
	if nm.Fabric.HwMMU.Violations.Load() != 0 {
		t.Errorf("unexpected hwMMU violations: %d", nm.Fabric.HwMMU.Violations.Load())
	}
}

func TestNativeHwTaskPolledCompletion(t *testing.T) {
	ok := false
	nativeOS(t, simclock.FromMillis(80), func(os *OS) {
		os.TaskCreate("hw", 10, func(task *Task) {
			task.OS.M.SetupDataSection(64 << 10)
			h, _ := task.AcquireHw(hwtask.TaskQAM4)
			if h == nil {
				return
			}
			ok = h.RunPolled(task, 0x100, 0x800, 32, 4)
		})
	})
	if !ok {
		t.Error("polled completion failed")
	}
}

func TestWorkloadsMakeProgress(t *testing.T) {
	gsm := apps.NewGSMWorkload(2, 1)
	adpcm := apps.NewADPCMWorkload(2, 2)
	nativeOS(t, simclock.FromMillis(30), func(os *OS) {
		os.TaskCreate("gsm", 10, func(task *Task) {
			for {
				gsm.Step(task.Ctx, 0x0100_0000)
				task.Exec(50)
			}
		})
		os.TaskCreate("adpcm", 12, func(task *Task) {
			for {
				adpcm.Step(task.Ctx, 0x0110_0000)
				task.Exec(50)
			}
		})
	})
	// gsm at higher priority runs; adpcm should still run whenever gsm...
	// both are always-ready, so only the higher-priority one runs — that
	// is correct uC/OS-II semantics. Verify gsm progressed.
	if gsm.Frames() == 0 {
		t.Error("GSM workload made no progress")
	}
	if gsm.Output() == 0 {
		t.Error("GSM digest empty")
	}
}
