package ucos

import (
	"repro/internal/abi"
	"repro/internal/cpu"
	"repro/internal/hwtask"
	"repro/internal/nova"
	"repro/internal/simclock"
)

// VirtMachine is the paravirtualized port: uC/OS-II de-privileged into a
// Mini-NOVA protection domain. Every method that touches sensitive state
// issues one of the kernel's hypercalls — 17 distinct calls in total,
// matching the paper's count of hypercalls used by the ported uCOS-II:
//
//	HcUARTWrite, HcVMID, HcYield, HcTimerSet, HcTimerCancel,
//	HcIRQEnable, HcIRQDisable, HcIRQEOI, HcCacheFlush, HcTLBFlush,
//	HcMapPage, HcRegionCreate, HcDACRSwitch, HcHwTaskRequest,
//	HcHwTaskRelease, HcHwTaskStatus, HcSuspend
type VirtMachine struct {
	Env *nova.Env

	dataVA    uint32
	dataSize  uint32
	ifaceNext uint32
	ramNext   uint32 // next unassigned RAM offset for data sections
}

// NewVirtMachine wraps a PD environment.
func NewVirtMachine(env *nova.Env) *VirtMachine {
	return &VirtMachine{
		Env:       env,
		ifaceNext: nova.GuestIfaceBase,
		ramNext:   3 << 20, // data sections carved from the last RAM MB
	}
}

// Name implements Machine.
func (m *VirtMachine) Name() string { return "virt/" + m.Env.PD.Name_ }

// NewContext implements Machine: task contexts execute on the PD's home
// core (the CPU its root context is bound to).
func (m *VirtMachine) NewContext(name string, base, size uint32) *cpu.ExecContext {
	return cpu.NewExecContext(m.Env.Ctx.CPU, name, base, size)
}

// KernelCodeBase implements Machine: the de-privileged kernel image.
func (m *VirtMachine) KernelCodeBase() uint32 { return nova.GuestKernelBase }

// TaskCodeBase implements Machine: tasks live in guest-user space.
func (m *VirtMachine) TaskCodeBase(prio int) uint32 {
	return nova.GuestUserBase + uint32(prio)*(16<<10)
}

// Now implements Machine.
func (m *VirtMachine) Now() simclock.Cycles { return m.Env.Now() }

// SetIRQEntry implements Machine: register the VM's IRQ entry with its
// vGIC (§III-B "the entry address of the virtual machine's IRQ handler is
// registered in vGIC").
func (m *VirtMachine) SetIRQEntry(fn func(irq int)) { m.Env.PD.VGIC.Entry = fn }

// EnableIRQ implements Machine.
func (m *VirtMachine) EnableIRQ(irq int) { m.Env.Hypercall(abi.HcIRQEnable, uint32(irq)) }

// DisableIRQ implements Machine.
func (m *VirtMachine) DisableIRQ(irq int) { m.Env.Hypercall(abi.HcIRQDisable, uint32(irq)) }

// EOI implements Machine.
func (m *VirtMachine) EOI(irq int) { m.Env.Hypercall(abi.HcIRQEOI, uint32(irq)) }

// SetTickTimer implements Machine: the guest timer is a virtual timer
// allocated by Mini-NOVA (§V-A).
func (m *VirtMachine) SetTickTimer(period simclock.Cycles) {
	if period == 0 {
		m.Env.Hypercall(abi.HcTimerCancel)
		return
	}
	m.Env.Hypercall(abi.HcTimerSet, uint32(period))
}

// CheckPreempt implements Machine: vIRQ delivery + hypervisor yield.
func (m *VirtMachine) CheckPreempt() { m.Env.CheckPreempt() }

// RestoreCursors rewinds the machine's allocation cursors to a
// checkpointed position, so a restored guest that later calls
// SetupDataSection or RequestHwTask carves the same addresses the
// template would have.
func (m *VirtMachine) RestoreCursors(s MachineSnap) {
	m.dataVA, m.dataSize = s.DataVA, s.DataSize
	m.ifaceNext, m.ramNext = s.IfaceNext, s.RamNext
}

// Dying implements Machine: tied to the hypervisor's shutdown signal.
func (m *VirtMachine) Dying() <-chan struct{} { return m.Env.K.Dying() }

// Idle implements Machine: paravirtualized WFI (HcSuspend mode 1).
func (m *VirtMachine) Idle() {
	m.Env.Hypercall(abi.HcSuspend, 1)
	m.Env.CheckPreempt()
}

// Print implements Machine (supervised UART).
func (m *VirtMachine) Print(s string) {
	for _, ch := range []byte(s) {
		m.Env.Hypercall(abi.HcUARTWrite, uint32(ch))
	}
}

// CacheFlush implements Machine.
func (m *VirtMachine) CacheFlush() { m.Env.Hypercall(abi.HcCacheFlush) }

// EnterUserCtx implements Machine (Table II DACR flip).
func (m *VirtMachine) EnterUserCtx() { m.Env.Hypercall(abi.HcDACRSwitch, 0) }

// EnterKernelCtx implements Machine.
func (m *VirtMachine) EnterKernelCtx() { m.Env.Hypercall(abi.HcDACRSwitch, 1) }

// VMID implements Machine.
func (m *VirtMachine) VMID() int { return int(m.Env.Hypercall(abi.HcVMID)) }

// SetupDataSection implements Machine: map pages at the conventional
// data-section VA from the tail of the VM's RAM, then register the region
// with the kernel (HcMapPage × n + HcRegionCreate).
func (m *VirtMachine) SetupDataSection(size uint32) (uint32, bool) {
	size = (size + 0xFFF) &^ 0xFFF
	va := uint32(nova.GuestDataSect)
	for off := uint32(0); off < size; off += 0x1000 {
		if m.Env.Hypercall(abi.HcMapPage, va+off, m.ramNext+off) != abi.StatusOK {
			return 0, false
		}
	}
	if m.Env.Hypercall(abi.HcRegionCreate, va, size) != abi.StatusOK {
		return 0, false
	}
	m.ramNext += size
	m.dataVA, m.dataSize = va, size
	return va, true
}

// RequestHwTask implements Machine (§IV-E: three arguments — task ID,
// interface VA, data-section VA).
func (m *VirtMachine) RequestHwTask(taskID uint16) HwGrant {
	iface := m.ifaceNext
	m.ifaceNext += 0x1000
	reply := m.Env.Hypercall(abi.HcHwTaskRequest, uint32(taskID), iface, m.dataVA)
	g := HwGrant{
		Status:  hwtask.StatusOf(reply),
		PRR:     hwtask.PRROf(reply),
		IRQ:     hwtask.IRQOf(reply),
		IfaceVA: iface,
		DataVA:  m.dataVA,
	}
	if g.Status != hwtask.ReplyOK && g.Status != hwtask.ReplyReconfig {
		m.ifaceNext -= 0x1000 // nothing was mapped
		g.IfaceVA = 0
	}
	return g
}

// ReleaseHwTask implements Machine.
func (m *VirtMachine) ReleaseHwTask(taskID uint16) {
	m.Env.Hypercall(abi.HcHwTaskRelease, uint32(taskID))
}

// ReconfigBusy implements Machine (PCAP completion polling, §IV-E).
func (m *VirtMachine) ReconfigBusy() bool {
	return m.Env.Hypercall(abi.HcHwTaskStatus, 0) == abi.StatusReconfig
}

// ReconfigStatus implements Machine: the raw HcHwTaskStatus reply, which
// distinguishes a download still in flight (StatusReconfig) from one the
// kernel gave up on (StatusFaulted).
func (m *VirtMachine) ReconfigStatus() uint32 {
	return m.Env.Hypercall(abi.HcHwTaskStatus, 0)
}

// Guest adapts an OS factory to nova.Guest so a uC/OS-II instance can be
// created as a protection domain. Setup runs once after boot to create
// the instance's tasks.
type Guest struct {
	GuestName string
	Setup     func(os *OS)
	// OS is populated when the PD first runs.
	OS *OS
}

// Name implements nova.Guest.
func (g *Guest) Name() string { return g.GuestName }

// RunSlice implements nova.Guest: construct the machine and boot. The
// deferred Shutdown unwinds this OS's task goroutines when the
// hypervisor tears the PD down.
func (g *Guest) RunSlice(env *nova.Env) {
	m := NewVirtMachine(env)
	g.OS = NewOS(g.GuestName, m)
	defer g.OS.Shutdown()
	if g.Setup != nil {
		g.Setup(g.OS)
	}
	g.OS.Run()
}
