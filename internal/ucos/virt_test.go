package ucos

import (
	"strings"
	"testing"

	"repro/internal/hwtask"
	"repro/internal/nova"
	"repro/internal/pl"
	"repro/internal/simclock"
)

// virtSystem boots a Mini-NOVA kernel with the paper's fabric + manager
// service and n uCOS guests configured by setup(i, os).
func virtSystem(t *testing.T, n int, setup func(vm int, os *OS)) (*nova.Kernel, []*Guest) {
	t.Helper()
	k := nova.NewKernel()
	caps := hwtask.PaperPRRCapacities()
	fabric := pl.NewFabric(k.Clock, k.Bus, k.GIC, caps)
	for id, core := range paperCores() {
		fabric.RegisterCore(id, core)
	}
	k.AttachFabric(fabric)

	mgr := hwtask.NewManager(len(caps), nova.GuestUserBase+0x10_0000)
	if err := hwtask.InstallTaskSet(mgr, k.Bus, nova.BitstreamStorePA(), caps, hwtask.PaperTaskSet()); err != nil {
		t.Fatal(err)
	}
	svc := hwtask.NewService(mgr, k)
	svcPD := k.CreatePD(nova.PDConfig{
		Name: "hwtm", Priority: nova.PrioService, Caps: nova.CapHwManager,
		Guest: svc, CodeBase: nova.GuestUserBase, CodeSize: 8 << 10,
		StartSuspended: true,
	})
	k.RegisterHwService(svcPD)

	var guests []*Guest
	for i := 0; i < n; i++ {
		i := i
		g := &Guest{GuestName: "ucos-vm", Setup: func(os *OS) { setup(i, os) }}
		guests = append(guests, g)
		k.CreatePD(nova.PDConfig{Name: g.GuestName, Priority: nova.PrioGuest, Guest: g})
	}
	return k, guests
}

func TestVirtUCOSBootsAndTicks(t *testing.T) {
	k, guests := virtSystem(t, 1, func(_ int, os *OS) {
		os.TaskCreate("work", 10, func(task *Task) {
			for {
				task.Exec(300)
			}
		})
	})
	defer k.Shutdown()
	k.RunFor(simclock.FromMillis(20))
	if guests[0].OS == nil {
		t.Fatal("guest OS never constructed")
	}
	if guests[0].OS.Ticks < 15 {
		t.Errorf("guest saw %d ticks in 20ms at 1ms period, want ~19", guests[0].OS.Ticks)
	}
}

func TestVirtUCOSPrintSupervised(t *testing.T) {
	k, _ := virtSystem(t, 1, func(_ int, os *OS) {
		os.TaskCreate("hello", 10, func(task *Task) {
			task.Print("hello-virt")
		})
	})
	defer k.Shutdown()
	k.RunFor(simclock.FromMillis(5))
	if !strings.Contains(k.ConsoleString(), "hello-virt") {
		t.Errorf("console = %q", k.ConsoleString())
	}
}

func TestVirtHwTaskEndToEnd(t *testing.T) {
	var status uint32 = 999
	ran := false
	k, _ := virtSystem(t, 1, func(_ int, os *OS) {
		os.TaskCreate("hw", 10, func(task *Task) {
			if _, ok := task.OS.M.SetupDataSection(64 << 10); !ok {
				t.Error("data section setup failed")
				return
			}
			h, st := task.AcquireHw(hwtask.TaskQAM16)
			status = st
			if h == nil {
				return
			}
			ran = h.Run(task, 0x100, 0x800, 64, 16, 100)
		})
	})
	defer k.Shutdown()
	k.RunFor(simclock.FromMillis(50))
	if status != hwtask.ReplyReconfig {
		t.Fatalf("acquire status = %d, want Reconfig (cold PRR)", status)
	}
	if !ran {
		t.Fatal("hardware task did not complete under virtualization")
	}
	// Table III probes must have samples now.
	for _, ph := range []string{"mgr_entry", "mgr_exit", "mgr_exec", "plirq_entry"} {
		if k.Probes.Get(ph).Count == 0 {
			t.Errorf("probe %s has no samples", ph)
		}
	}
}

func TestVirtTwoVMsShareHardwareTask(t *testing.T) {
	// Both VMs use the same QAM task; the manager must hand the region
	// back and forth with the consistency protocol of §IV-C.
	results := make([]bool, 2)
	k, _ := virtSystem(t, 2, func(vm int, os *OS) {
		os.TaskCreate("hw", 10, func(task *Task) {
			task.OS.M.SetupDataSection(64 << 10)
			// Asymmetric backoff: two clients hammering the same task can
			// reclaim it from each other between acquire and use (the
			// §IV-C consistency flag catches it); backing off differently
			// guarantees progress.
			for try := 0; try < 60; try++ {
				h, st := task.AcquireHw(hwtask.TaskQAM4)
				if h == nil {
					if st == hwtask.ReplyBusy {
						task.Delay(uint32(2 + vm))
						continue
					}
					return
				}
				if h.Run(task, 0x100, 0x800, 32, 4, 200) {
					results[vm] = true
					task.ReleaseHw(h)
					return
				}
				task.ReleaseHw(h)
				task.Delay(uint32(2 + 3*vm + try%3))
			}
		})
	})
	defer k.Shutdown()
	k.RunFor(simclock.FromMillis(1000))
	if !results[0] || !results[1] {
		t.Errorf("hardware task completion per VM = %v, want both true", results)
	}
	if k.Fabric.HwMMU.Violations.Load() != 0 {
		t.Errorf("hwMMU violations = %d, want 0", k.Fabric.HwMMU.Violations.Load())
	}
}

func TestVirtIsolationHwTaskDMAConfined(t *testing.T) {
	// A guest programming its task to DMA outside its data section must
	// get a DMA error, not a breach (§IV-C second principle).
	var runOK bool
	var errSeen bool
	k, _ := virtSystem(t, 1, func(_ int, os *OS) {
		os.TaskCreate("evil", 10, func(task *Task) {
			task.OS.M.SetupDataSection(16 << 10)
			h, _ := task.AcquireHw(hwtask.TaskQAM4)
			if h == nil {
				return
			}
			// dst offset far outside the 16 KB window
			runOK = h.Run(task, 0x100, 1<<20, 64, 4, 200)
			errSeen = !runOK
		})
	})
	defer k.Shutdown()
	k.RunFor(simclock.FromMillis(100))
	if runOK {
		t.Error("DMA escape reported success")
	}
	if !errSeen {
		t.Error("no error observed")
	}
	if k.Fabric.HwMMU.Violations.Load() == 0 {
		t.Error("hwMMU did not record the violation")
	}
}
